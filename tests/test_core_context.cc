/**
 * @file
 * Tests for HfiContext: the sandbox lifecycle (§3.3), register locking,
 * syscall interposition (§4.4), the exit-reason MSR, OS save/restore
 * (§3.3.3), the switch-on-exit extension (§4.5), and the cycle costs of
 * each instruction.
 */

#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/context.h"

namespace
{

using namespace hfi::core;
using hfi::vm::VirtualClock;

class ContextTest : public ::testing::Test
{
  protected:
    ImplicitDataRegion
    dataRegion(std::uint64_t base, std::uint64_t mask, bool rd = true,
               bool wr = true)
    {
        ImplicitDataRegion r;
        r.basePrefix = base;
        r.lsbMask = mask;
        r.permRead = rd;
        r.permWrite = wr;
        return r;
    }

    ExplicitDataRegion
    heapRegion(std::uint64_t base, std::uint64_t bound)
    {
        ExplicitDataRegion r;
        r.baseAddress = base;
        r.bound = bound;
        r.permRead = true;
        r.permWrite = true;
        r.isLargeRegion = true;
        return r;
    }

    VirtualClock clock;
    HfiContext ctx{clock};
};

TEST_F(ContextTest, StartsDisabled)
{
    EXPECT_FALSE(ctx.enabled());
    EXPECT_EQ(ctx.exitReason(), ExitReason::None);
}

TEST_F(ContextTest, EnterEnablesExitDisables)
{
    SandboxConfig cfg;
    EXPECT_EQ(ctx.enter(cfg), HfiResult::Ok);
    EXPECT_TRUE(ctx.enabled());
    ctx.exit();
    EXPECT_FALSE(ctx.enabled());
    EXPECT_EQ(ctx.exitReason(), ExitReason::HfiExit);
}

TEST_F(ContextTest, SetRegionValidatesSlotClass)
{
    // A data region in a code slot must trap, and vice versa.
    EXPECT_EQ(ctx.setRegion(0, Region{dataRegion(0x1000, 0xfff)}),
              HfiResult::Trap);
    ImplicitCodeRegion code;
    code.basePrefix = 0x400000;
    code.lsbMask = 0xffff;
    code.permExec = true;
    EXPECT_EQ(ctx.setRegion(2, Region{code}), HfiResult::Trap);
    EXPECT_EQ(ctx.setRegion(0, Region{code}), HfiResult::Ok);
    EXPECT_EQ(ctx.setRegion(2, Region{dataRegion(0x1000, 0xfff)}),
              HfiResult::Ok);
    EXPECT_EQ(ctx.setRegion(6, Region{heapRegion(0, 1 << 16)}),
              HfiResult::Ok);
}

TEST_F(ContextTest, SetRegionRejectsIllFormed)
{
    EXPECT_EQ(ctx.setRegion(2, Region{dataRegion(0x1800, 0xfff)}),
              HfiResult::Trap);
    ExplicitDataRegion bad = heapRegion(1, 1 << 16); // unaligned large
    EXPECT_EQ(ctx.setRegion(6, Region{bad}), HfiResult::Trap);
    EXPECT_EQ(ctx.exitReason(), ExitReason::IllegalRegionUpdate);
}

TEST_F(ContextTest, SetRegionOutOfRangeTraps)
{
    EXPECT_EQ(ctx.setRegion(kNumRegions, Region{EmptyRegion{}}),
              HfiResult::Trap);
}

TEST_F(ContextTest, NativeSandboxLocksRegions)
{
    // §3.3.1: the native sandbox locks all region registers from
    // hfi_enter until exit.
    ASSERT_EQ(ctx.setRegion(2, Region{dataRegion(0x1000, 0xfff)}),
              HfiResult::Ok);
    SandboxConfig cfg;
    cfg.isHybrid = false;
    ctx.enter(cfg);
    EXPECT_EQ(ctx.setRegion(3, Region{dataRegion(0x2000, 0xfff)}),
              HfiResult::Trap);
    EXPECT_EQ(ctx.clearRegion(2), HfiResult::Trap);
    EXPECT_EQ(ctx.clearAllRegions(), HfiResult::Trap);
    EXPECT_FALSE(ctx.getRegion(2).has_value());
    ctx.exit();
    EXPECT_EQ(ctx.setRegion(3, Region{dataRegion(0x2000, 0xfff)}),
              HfiResult::Ok);
}

TEST_F(ContextTest, HybridSandboxKeepsRegionsWritable)
{
    SandboxConfig cfg;
    cfg.isHybrid = true;
    ctx.enter(cfg);
    EXPECT_EQ(ctx.setRegion(6, Region{heapRegion(0, 1 << 16)}),
              HfiResult::Ok);
    auto got = ctx.getRegion(6);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(std::get<ExplicitDataRegion>(*got).bound, 1u << 16);
}

TEST_F(ContextTest, HybridRegionUpdateSerializes)
{
    // §4.3: region updates inside a hybrid sandbox serialize; outside
    // they do not.
    const auto outside0 = ctx.stats().serializations;
    ctx.setRegion(6, Region{heapRegion(0, 1 << 16)});
    EXPECT_EQ(ctx.stats().serializations, outside0);

    SandboxConfig cfg;
    cfg.isHybrid = true;
    ctx.enter(cfg);
    ctx.setRegion(6, Region{heapRegion(0, 2 << 16)});
    EXPECT_EQ(ctx.stats().serializations, outside0 + 1);
}

TEST_F(ContextTest, SerializedEnterChargesSerialization)
{
    SandboxConfig cfg;
    cfg.isSerialized = true;
    const auto t0 = clock.now();
    ctx.enter(cfg);
    EXPECT_GE(clock.now() - t0,
              ctx.costs().serializeCycles + ctx.costs().enterCycles);
    EXPECT_EQ(ctx.stats().serializations, 1u);
    ctx.exit();
    EXPECT_EQ(ctx.stats().serializations, 2u);
}

TEST_F(ContextTest, UnserializedEnterIsFunctionCallCheap)
{
    SandboxConfig cfg;
    const auto t0 = clock.now();
    ctx.enter(cfg);
    ctx.exit();
    // §1: context switches "on the same order as a function call" —
    // low tens of cycles for the pair.
    EXPECT_LE(clock.now() - t0, 40u);
}

TEST_F(ContextTest, NativeExitGoesToHandler)
{
    SandboxConfig cfg;
    cfg.isHybrid = false;
    cfg.exitHandler = 0xcafe0000;
    ctx.enter(cfg);
    EXPECT_EQ(ctx.exit(), 0xcafe0000u);
}

TEST_F(ContextTest, HybridExitFallsThroughWithoutHandler)
{
    SandboxConfig cfg;
    cfg.isHybrid = true;
    ctx.enter(cfg);
    EXPECT_EQ(ctx.exit(), 0u);
}

TEST_F(ContextTest, SyscallPassesThroughWhenDisabledOrHybrid)
{
    EXPECT_FALSE(ctx.onSyscall().has_value());
    SandboxConfig cfg;
    cfg.isHybrid = true;
    ctx.enter(cfg);
    // §3.3.1: the hybrid runtime "can make any system calls it needs to
    // directly".
    EXPECT_FALSE(ctx.onSyscall().has_value());
    EXPECT_TRUE(ctx.enabled());
}

TEST_F(ContextTest, SyscallRedirectsInNativeSandbox)
{
    SandboxConfig cfg;
    cfg.isHybrid = false;
    cfg.exitHandler = 0xbeef0000;
    ctx.enter(cfg);
    auto handler = ctx.onSyscall();
    ASSERT_TRUE(handler.has_value());
    EXPECT_EQ(*handler, 0xbeef0000u);
    EXPECT_FALSE(ctx.enabled()); // disabled atomically with the redirect
    EXPECT_EQ(ctx.exitReason(), ExitReason::Syscall);
    EXPECT_EQ(ctx.stats().syscallRedirects, 1u);
}

TEST_F(ContextTest, ReenterRestoresLastSandbox)
{
    SandboxConfig cfg;
    cfg.isHybrid = false;
    cfg.exitHandler = 0xbeef0000;
    ctx.enter(cfg);
    ctx.onSyscall(); // kicked out
    EXPECT_FALSE(ctx.enabled());
    EXPECT_EQ(ctx.reenter(), HfiResult::Ok);
    EXPECT_TRUE(ctx.enabled());
    EXPECT_FALSE(ctx.config().isHybrid);
    EXPECT_EQ(ctx.config().exitHandler, 0xbeef0000u);
}

TEST_F(ContextTest, ReenterWhileEnabledTraps)
{
    ctx.enter(SandboxConfig{});
    EXPECT_EQ(ctx.reenter(), HfiResult::Trap);
}

TEST_F(ContextTest, FaultDisablesAndRecordsMsr)
{
    ctx.enter(SandboxConfig{});
    ctx.onFault(ExitReason::DataBoundsViolation);
    EXPECT_FALSE(ctx.enabled());
    EXPECT_EQ(ctx.readExitReasonMsr(), ExitReason::DataBoundsViolation);
    EXPECT_EQ(ctx.stats().faults, 1u);
}

TEST_F(ContextTest, XsaveXrstorRoundTrip)
{
    ctx.setRegion(2, Region{dataRegion(0x1000, 0xfff)});
    const HfiRegisterFile saved = ctx.xsave();
    ctx.clearAllRegions();
    EXPECT_TRUE(
        std::holds_alternative<EmptyRegion>(ctx.region(2)));
    EXPECT_EQ(ctx.xrstor(saved), HfiResult::Ok);
    EXPECT_TRUE(
        std::holds_alternative<ImplicitDataRegion>(ctx.region(2)));
}

TEST_F(ContextTest, XrstorInNativeSandboxTraps)
{
    // §3.3.3: xrstor with save-hfi-regs inside a native sandbox would
    // break isolation, so it traps.
    const HfiRegisterFile saved = ctx.xsave();
    SandboxConfig cfg;
    cfg.isHybrid = false;
    ctx.enter(cfg);
    EXPECT_EQ(ctx.xrstor(saved), HfiResult::Trap);
    EXPECT_EQ(ctx.exitReason(), ExitReason::IllegalXrstor);
    EXPECT_FALSE(ctx.enabled()); // the trap exits the sandbox
}

TEST_F(ContextTest, XrstorInHybridAllowed)
{
    const HfiRegisterFile saved = ctx.xsave();
    SandboxConfig cfg;
    cfg.isHybrid = true;
    ctx.enter(cfg);
    EXPECT_EQ(ctx.xrstor(saved), HfiResult::Ok);
}

TEST_F(ContextTest, SwitchOnExitRestoresRuntimeBank)
{
    // §4.5: the runtime's own regions are preserved across a
    // switch-on-exit child, and hfi_exit stays in HFI mode.
    ctx.setRegion(2, Region{dataRegion(0x1000, 0xfff)});
    SandboxConfig runtime_cfg;
    runtime_cfg.isHybrid = true;
    runtime_cfg.isSerialized = true;
    ctx.enter(runtime_cfg);

    SandboxConfig child;
    child.isHybrid = true; // leave regions writable so we can mutate
    child.switchOnExit = true;
    ctx.enter(child);
    ctx.setRegion(2, Region{dataRegion(0x2000, 0xfff)});
    ASSERT_TRUE(std::holds_alternative<ImplicitDataRegion>(ctx.region(2)));
    EXPECT_EQ(std::get<ImplicitDataRegion>(ctx.region(2)).basePrefix,
              0x2000u);

    ctx.exit();
    EXPECT_TRUE(ctx.enabled()); // still sandboxed — in the runtime's bank
    EXPECT_TRUE(ctx.lastExitSwitched());
    EXPECT_EQ(std::get<ImplicitDataRegion>(ctx.region(2)).basePrefix,
              0x1000u);
    EXPECT_EQ(ctx.stats().bankSwitches, 2u);

    // The runtime's own exit is serialized and actually leaves HFI.
    ctx.exit();
    EXPECT_FALSE(ctx.enabled());
}

TEST_F(ContextTest, SwitchOnExitAvoidsSerialization)
{
    SandboxConfig runtime_cfg;
    runtime_cfg.isHybrid = true;
    runtime_cfg.isSerialized = true;
    ctx.enter(runtime_cfg);
    const auto serializations = ctx.stats().serializations;

    SandboxConfig child;
    child.switchOnExit = true;
    ctx.enter(child);
    ctx.exit();
    // Neither the child's entry nor its exit serialized (§4.5).
    EXPECT_EQ(ctx.stats().serializations, serializations);
}

TEST_F(ContextTest, StatsCountLifecycle)
{
    ctx.enter(SandboxConfig{});
    ctx.exit();
    ctx.enter(SandboxConfig{});
    ctx.exit();
    EXPECT_EQ(ctx.stats().enters, 2u);
    EXPECT_EQ(ctx.stats().exits, 2u);
}

TEST(ExitReasonNames, AllDistinctAndNamed)
{
    for (int i = 0; i <= static_cast<int>(ExitReason::IllegalXrstor); ++i) {
        const char *name = toString(static_cast<ExitReason>(i));
        EXPECT_STRNE(name, "unknown");
    }
}

} // namespace
