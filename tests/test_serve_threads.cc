/**
 * @file
 * Tests for the serving engine's real-threads mode: one host
 * std::thread per simulated core, which is only sound because an
 * open-loop, round-robin, no-stealing configuration decomposes into
 * independent per-shard event loops. The contract is bit-identity with
 * the sequential driver — not "statistically close", identical — so
 * these tests compare every merged statistic and the full per-request
 * latency sample vector.
 */

#include <gtest/gtest.h>

#include "serve/engine.h"

namespace
{

using namespace hfi;
using namespace hfi::serve;

Handler
testHandler()
{
    return [](sfi::Sandbox &s, std::uint32_t seed) {
        for (int i = 0; i < 16; ++i)
            s.store<std::uint32_t>(64 + (i % 16) * 4, seed + i);
        s.chargeOps(30'000);
    };
}

EngineConfig
threadableConfig(unsigned workers)
{
    EngineConfig ec;
    ec.workers = workers;
    ec.mode = LoadMode::OpenLoop;
    ec.requests = 300;
    ec.meanInterarrivalNs = 4'000.0;
    ec.seed = 77;
    ec.workStealing = false;
    ec.sharding = Sharding::RoundRobin;
    ec.worker.scheme = Scheme::HfiNative;
    ec.worker.quantumNs = 50'000.0;
    return ec;
}

void
expectSameRobustness(const RobustnessStats &a, const RobustnessStats &b)
{
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.exits, b.exits);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.quarantines, b.quarantines);
    EXPECT_EQ(a.respawns, b.respawns);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.poolWaits, b.poolWaits);
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.shed, b.shed);
    for (unsigned i = 0; i < core::kNumExitReasons; ++i)
        EXPECT_EQ(a.exitsByReason[i], b.exitsByReason[i]);
}

void
expectIdentical(const ServeResult &a, const ServeResult &b)
{
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.stolen, b.stolen);
    EXPECT_EQ(a.maxQueueDepth, b.maxQueueDepth);
    EXPECT_EQ(a.contextSwitches, b.contextSwitches);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.instancesCreated, b.instancesCreated);
    EXPECT_EQ(a.reclaimBatches, b.reclaimBatches);
    EXPECT_EQ(a.hfiStateMismatches, b.hfiStateMismatches);
    EXPECT_EQ(a.durationNs, b.durationNs);
    EXPECT_EQ(a.throughputRps, b.throughputRps);
    EXPECT_EQ(a.meanLatencyNs, b.meanLatencyNs);
    EXPECT_EQ(a.latency.p50, b.latency.p50);
    EXPECT_EQ(a.latency.p95, b.latency.p95);
    EXPECT_EQ(a.latency.p99, b.latency.p99);
    EXPECT_EQ(a.latency.p999, b.latency.p999);
    ASSERT_EQ(a.latencies.values(), b.latencies.values());
    expectSameRobustness(a.robustness, b.robustness);
    ASSERT_EQ(a.perCore.size(), b.perCore.size());
    for (std::size_t w = 0; w < a.perCore.size(); ++w) {
        SCOPED_TRACE(w);
        // Satellite fix: shed has one source of truth (the per-shard
        // queue counters), so the by-core shed — not just the total —
        // must agree between the drivers.
        expectSameRobustness(a.perCore[w], b.perCore[w]);
    }
}

TEST(ServeThreads, ThreadedRunIsBitIdenticalToSequential)
{
    for (unsigned workers : {2u, 3u, 4u}) {
        SCOPED_TRACE(workers);
        auto cfg = threadableConfig(workers);
        cfg.realThreads = true;
        const auto threaded = ServeEngine(cfg, testHandler()).run();
        EXPECT_EQ(threaded.usedThreads, workers);

        cfg.realThreads = false;
        const auto sequential = ServeEngine(cfg, testHandler()).run();
        EXPECT_EQ(sequential.usedThreads, 1u);

        expectIdentical(threaded, sequential);
    }
}

TEST(ServeThreads, BoundedQueuesShedIdenticallyUnderThreads)
{
    // Shedding is the subtlest part of the decomposition argument: the
    // admit-vs-serve tie break must play out per shard exactly as it
    // does in the global loop.
    auto cfg = threadableConfig(4);
    cfg.requests = 600;
    cfg.meanInterarrivalNs = 1'000.0; // heavy overload
    cfg.queueCapacity = 4;
    cfg.realThreads = true;
    const auto threaded = ServeEngine(cfg, testHandler()).run();
    EXPECT_GT(threaded.shed, 0u);

    cfg.realThreads = false;
    const auto sequential = ServeEngine(cfg, testHandler()).run();
    expectIdentical(threaded, sequential);
}

TEST(ServeThreads, ThreadedRunsAreRepeatable)
{
    auto cfg = threadableConfig(4);
    cfg.realThreads = true;
    const auto a = ServeEngine(cfg, testHandler()).run();
    const auto b = ServeEngine(cfg, testHandler()).run();
    expectIdentical(a, b);
}

TEST(ServeThreads, FaultCampaignIsBitIdenticalUnderThreads)
{
    // The whole robustness pipeline — injection, retries with backoff,
    // watchdog timeouts, quarantine + background respawn out of warm
    // pools — must replay identically when each shard runs on its own
    // host thread. Fault decisions are pure in (seed, id, attempt), so
    // partitioning by id cannot change any request's fate.
    auto cfg = threadableConfig(4);
    cfg.requests = 600;
    cfg.worker.poolSize = 2;
    cfg.worker.respawnDelayNs = 50'000.0;
    cfg.worker.requestTimeoutNs = 150'000.0;
    cfg.worker.maxRetries = 2;
    cfg.worker.retryBackoffNs = 10'000.0;
    cfg.worker.faults.rate = 0.1;
    cfg.worker.faults.stallNs = 400'000.0;

    cfg.realThreads = true;
    const auto threaded = ServeEngine(cfg, testHandler()).run();
    EXPECT_EQ(threaded.usedThreads, 4u);
    EXPECT_GT(threaded.robustness.exits, 0u);
    EXPECT_GT(threaded.robustness.quarantines, 0u);

    cfg.realThreads = false;
    const auto sequential = ServeEngine(cfg, testHandler()).run();
    EXPECT_EQ(sequential.usedThreads, 1u);
    expectIdentical(threaded, sequential);
}

TEST(ServeThreads, NonDecomposableConfigsFallBackToSequential)
{
    // Work stealing couples the shards: must not thread.
    auto stealing = threadableConfig(4);
    stealing.realThreads = true;
    stealing.workStealing = true;
    EXPECT_EQ(ServeEngine(stealing, testHandler()).run().usedThreads, 1u);

    // Closed loop couples arrivals to completions: must not thread.
    auto closed = threadableConfig(4);
    closed.realThreads = true;
    closed.mode = LoadMode::ClosedLoop;
    closed.clients = 8;
    EXPECT_EQ(ServeEngine(closed, testHandler()).run().usedThreads, 1u);

    // Single-shard routing funnels everything to shard 0: must not
    // thread.
    auto single = threadableConfig(4);
    single.realThreads = true;
    single.sharding = Sharding::SingleShard;
    EXPECT_EQ(ServeEngine(single, testHandler()).run().usedThreads, 1u);

    // One worker: the sequential driver is the per-shard loop already.
    auto one = threadableConfig(1);
    one.realThreads = true;
    EXPECT_EQ(ServeEngine(one, testHandler()).run().usedThreads, 1u);
}

} // namespace
