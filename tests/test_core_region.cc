/**
 * @file
 * Tests for the HFI region types' shape rules (§3.2): power-of-two
 * implicit regions, 64 KiB-granular large explicit regions, and
 * byte-granular small explicit regions that must not span a 4 GiB
 * boundary.
 */

#include <gtest/gtest.h>

#include "core/region.h"

namespace
{

using namespace hfi::core;

TEST(RegionLayout, RegisterMapMatchesAppendix)
{
    // Appendix A.1: (0-1) code, (2-5) implicit data, (6-9) explicit.
    EXPECT_EQ(kNumRegions, 10u);
    EXPECT_EQ(regionClassOf(0), RegionClass::Code);
    EXPECT_EQ(regionClassOf(1), RegionClass::Code);
    EXPECT_EQ(regionClassOf(2), RegionClass::ImplicitData);
    EXPECT_EQ(regionClassOf(5), RegionClass::ImplicitData);
    EXPECT_EQ(regionClassOf(6), RegionClass::ExplicitData);
    EXPECT_EQ(regionClassOf(9), RegionClass::ExplicitData);
}

TEST(ImplicitRegion, WellFormedRequiresPow2Mask)
{
    ImplicitDataRegion r;
    r.basePrefix = 0x10000;
    r.lsbMask = 0xffff;
    EXPECT_TRUE(r.wellFormed());
    r.lsbMask = 0xfffe; // not 2^k - 1
    EXPECT_FALSE(r.wellFormed());
    r.lsbMask = 0x10000; // not 2^k - 1 either
    EXPECT_FALSE(r.wellFormed());
}

TEST(ImplicitRegion, WellFormedRequiresAlignedBase)
{
    ImplicitDataRegion r;
    r.lsbMask = 0xfff;
    r.basePrefix = 0x1000;
    EXPECT_TRUE(r.wellFormed());
    r.basePrefix = 0x1800; // bits inside the mask
    EXPECT_FALSE(r.wellFormed());
}

TEST(ImplicitRegion, ContainsIsPrefixMatch)
{
    ImplicitDataRegion r;
    r.basePrefix = 0x7fff8000;
    r.lsbMask = 0x7fff;
    EXPECT_TRUE(r.contains(0x7fff8000));
    EXPECT_TRUE(r.contains(0x7fffffff));
    EXPECT_FALSE(r.contains(0x7fff7fff));
    EXPECT_FALSE(r.contains(0x80000000));
}

TEST(ImplicitCodeRegion, SameRulesAsData)
{
    ImplicitCodeRegion r;
    r.basePrefix = 0x400000;
    r.lsbMask = 0xffff;
    EXPECT_TRUE(r.wellFormed());
    EXPECT_TRUE(r.contains(0x40ffff));
    EXPECT_FALSE(r.contains(0x410000));
}

TEST(ImplicitRegion, ZeroMaskIsSingleByte)
{
    ImplicitDataRegion r;
    r.basePrefix = 0x1234;
    r.lsbMask = 0;
    EXPECT_TRUE(r.wellFormed());
    EXPECT_TRUE(r.contains(0x1234));
    EXPECT_FALSE(r.contains(0x1235));
}

TEST(LargeRegion, Requires64KAlignment)
{
    ExplicitDataRegion r;
    r.isLargeRegion = true;
    r.baseAddress = 3 << 16;
    r.bound = 2 << 16;
    EXPECT_TRUE(r.wellFormed());
    r.baseAddress += 1;
    EXPECT_FALSE(r.wellFormed());
    r.baseAddress -= 1;
    r.bound += 4096;
    EXPECT_FALSE(r.wellFormed());
}

TEST(LargeRegion, BoundCapIs2To48)
{
    ExplicitDataRegion r;
    r.isLargeRegion = true;
    r.baseAddress = 0;
    r.bound = kLargeRegionMaxBound;
    EXPECT_TRUE(r.wellFormed());
    r.bound += kLargeRegionGrain;
    EXPECT_FALSE(r.wellFormed());
}

TEST(SmallRegion, ByteGranular)
{
    ExplicitDataRegion r;
    r.baseAddress = 0x12345;
    r.bound = 1234;
    EXPECT_TRUE(r.wellFormed());
}

TEST(SmallRegion, BoundCapIs4GiB)
{
    ExplicitDataRegion r;
    r.baseAddress = 0;
    r.bound = kSmallRegionMaxBound;
    EXPECT_TRUE(r.wellFormed());
    r.bound += 1;
    EXPECT_FALSE(r.wellFormed());
}

TEST(SmallRegion, MustNotSpan4GiBBoundary)
{
    ExplicitDataRegion r;
    r.baseAddress = (1ULL << 32) - 4096;
    r.bound = 8192; // crosses the 4 GiB line
    EXPECT_FALSE(r.wellFormed());
    r.bound = 4096; // ends exactly on the line: allowed
    EXPECT_TRUE(r.wellFormed());
    r.baseAddress = 1ULL << 32; // starts on the line
    r.bound = 4096;
    EXPECT_TRUE(r.wellFormed());
}

TEST(SmallRegion, EmptyIsAlwaysWellFormed)
{
    ExplicitDataRegion r;
    r.baseAddress = 0xdeadbeef;
    r.bound = 0;
    EXPECT_TRUE(r.wellFormed());
}

TEST(SmallRegion, WrapAroundRejected)
{
    ExplicitDataRegion r;
    r.baseAddress = UINT64_MAX - 100;
    r.bound = 200;
    EXPECT_FALSE(r.wellFormed());
}

/** Property sweep: small regions accept exactly the non-spanning set. */
class SmallRegionBoundarySweep
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SmallRegionBoundarySweep, SpanRule)
{
    const std::uint64_t base = GetParam();
    ExplicitDataRegion r;
    r.baseAddress = base;
    r.bound = 1 << 20;
    const std::uint64_t last = base + r.bound - 1;
    const bool spans = (base >> 32) != (last >> 32) &&
                       (base + r.bound) % (1ULL << 32) != 0;
    EXPECT_EQ(r.wellFormed(), !spans);
}

INSTANTIATE_TEST_SUITE_P(
    Bases, SmallRegionBoundarySweep,
    ::testing::Values(0ULL, 4096ULL, (1ULL << 32) - (1ULL << 20),
                      (1ULL << 32) - (1ULL << 19), (1ULL << 32),
                      (3ULL << 32) - 17, (1ULL << 40) + 123));

} // namespace
